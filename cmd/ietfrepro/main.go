// Command ietfrepro regenerates every table and figure of "Understanding
// Congestion in IEEE 802.11b Wireless Networks" (Jardosh et al., IMC
// 2005) from synthetic IETF62-style traces.
//
// Tables 1–2 and Figures 4–5 come from the day and plenary session
// scenarios; the scatter Figures 6–15 come from the utilization sweep
// ladder, mirroring how the paper pools both sessions' per-second data.
// All three scenarios execute on the experiment engine's worker pool,
// each streaming straight into its own analysis pipeline — no
// materialized traces, so a full-scale run needs only per-second
// memory.
//
// Usage:
//
//	ietfrepro                 # everything, default scale
//	ietfrepro -scale 0.5      # faster, smaller runs
//	ietfrepro -only 8         # just Figure 8
//	ietfrepro -sweep 4        # seeds×scales robustness matrix instead of figures
//	ietfrepro -sweep 4 -grid  # matrix including the multi-cell grid scenarios
//	                          # (beyond the paper: interference grids, roaming
//	                          # mobiles, mixed b/g, ≥2 sniffers per channel)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"wlan80211/internal/experiment"
	"wlan80211/internal/prof"
	"wlan80211/internal/report"
	"wlan80211/internal/workload"
)

// profStop flushes any active profiles; main replaces it once
// profiling starts. Idempotent, safe before every exit path.
var profStop = func() {}

func main() {
	var (
		scale   = flag.Float64("scale", 1.0, "scenario scale factor (0..1]")
		only    = flag.Int("only", 0, "print only this figure number (0 = everything)")
		workers = flag.Int("workers", 0, "concurrent scenario runs (0 = GOMAXPROCS)")
		sweep   = flag.Int("sweep", 0, "run the day/plenary/ladder matrix over N seeds and print mean±stddev aggregates instead of figures")
		grid    = flag.Bool("grid", false, "include the multi-cell grid scenarios in the -sweep matrix (implies -sweep 1 when unset)")
		jsonOut = flag.String("json", "", "also write the run summaries (or -sweep aggregates) as JSON to this path, atomically")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write an allocs/heap profile to this file at exit")
	)
	flag.Parse()
	stop, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ietfrepro:", err)
		os.Exit(2)
	}
	// Explicit os.Exit paths flush through profStop (defers don't run
	// across os.Exit); stop is idempotent, so double flushes are safe.
	profStop = stop
	defer stop()

	if *only != 0 && (*only < 4 || *only > 15) {
		fmt.Fprintf(os.Stderr, "ietfrepro: no figure %d (have 4-15)\n", *only)
		profStop()
		os.Exit(2)
	}

	if *grid && *sweep <= 0 {
		*sweep = 1
	}
	if *sweep > 0 {
		runMatrix(*sweep, *scale, *workers, *grid, *jsonOut)
		return
	}

	day := workload.DaySession().Scale(*scale)
	plenary := workload.PlenarySession().Scale(*scale)

	// Table 1: the session plan itself.
	t1 := report.NewTable("Table 1: data sets", "set", "channels", "duration_s", "peak_users")
	t1.AddRow(day.Name, "1, 6, 11", day.DurationSec, day.PeakUsers)
	t1.AddRow(plenary.Name, "1, 6, 11", plenary.DurationSec, plenary.PeakUsers)

	if *only == 0 {
		t1.WriteTo(os.Stdout)
		fmt.Println()
		report.Table2().WriteTo(os.Stdout)
		fmt.Println()
	}

	// Only the scenarios whose figures will print run — concurrently
	// on the engine, streaming.
	needSessions := *only == 0 || *only == 4 || *only == 5
	needLadder := *only != 4 && *only != 5
	var specs []experiment.Spec
	if needSessions {
		specs = append(specs,
			experiment.Spec{Name: "day", Scale: *scale, Scenario: experiment.NewSession(day)},
			experiment.Spec{Name: "plenary", Scale: *scale, Scenario: experiment.NewSession(plenary)},
		)
	}
	if needLadder {
		specs = append(specs, experiment.Spec{
			Name: "ladder", Scale: *scale,
			Scenario: experiment.NewLadder("ladder", workload.DefaultLadder(*scale)),
		})
	}
	eng := &experiment.Engine{Workers: *workers}
	results := eng.Run(specs)
	for _, res := range results {
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "ietfrepro: %s: %v\n", res.Spec.Name, res.Err)
			profStop()
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		if err := writeSummariesJSON(*jsonOut, *scale, results); err != nil {
			fmt.Fprintln(os.Stderr, "ietfrepro:", err)
			profStop()
			os.Exit(1)
		}
	}

	// Session figures (4–5).
	if needSessions {
		for _, res := range results[:2] {
			r := res.Result
			fmt.Printf("=== %s session (%d frames captured) ===\n\n", res.Spec.Name, r.TotalFrames)
			if *only == 0 || *only == 4 {
				report.Figure4a(r, 15).WriteTo(os.Stdout)
				fmt.Println()
				report.Figure4b(r).WriteTo(os.Stdout)
				fmt.Println()
				report.Figure4c(r, 15).WriteTo(os.Stdout)
				fmt.Println()
			}
			if *only == 0 || *only == 5 {
				report.Figure5(r).WriteTo(os.Stdout)
				fmt.Println()
				report.Figure5c(r).WriteTo(os.Stdout)
				fmt.Println()
			}
		}
	}

	if *only == 4 || *only == 5 {
		return
	}

	// Sweep ladder for Figures 6–15 (always the last spec when run).
	r := results[len(results)-1].Result
	fmt.Printf("=== utilization sweep (%d frames captured) ===\n\n", r.TotalFrames)
	figs := map[int]*report.Table{
		6:  report.Figure6(r),
		7:  report.Figure7(r),
		8:  report.Figure8(r),
		9:  report.Figure9(r),
		10: report.Figure10(r),
		11: report.Figure11(r),
		12: report.Figure12(r),
		13: report.Figure13(r),
		14: report.Figure14(r),
		15: report.Figure15(r),
	}
	if *only != 0 {
		// *only is validated to 4..15 up front and 4/5 returned above.
		figs[*only].WriteTo(os.Stdout)
		return
	}
	report.Summary(r).WriteTo(os.Stdout)
	fmt.Println()
	for i := 6; i <= 15; i++ {
		figs[i].WriteTo(os.Stdout)
		fmt.Println()
	}
}

// runMatrix is the -sweep mode: the three repro scenarios × N seeds
// at the given scale (plus the grid scenarios with -grid), aggregated
// to mean±stddev per scenario — a robustness check that the headline
// numbers are not one-seed flukes.
// writeSummariesJSON archives the figure-mode run summaries as JSON,
// via temp-file+rename so an interrupt never leaves a torn report.
func writeSummariesJSON(path string, scale float64, results []experiment.RunResult) error {
	type row struct {
		Scenario string             `json:"scenario"`
		Scale    float64            `json:"scale"`
		Summary  experiment.Summary `json:"summary"`
	}
	doc := struct {
		Scale float64 `json:"scale"`
		Runs  []row   `json:"runs"`
	}{Scale: scale}
	for _, res := range results {
		doc.Runs = append(doc.Runs, row{Scenario: res.Spec.Name, Scale: res.Spec.Scale, Summary: res.Summary})
	}
	return experiment.WriteJSONAtomic(path, doc)
}

func runMatrix(nSeeds int, scale float64, workers int, grid bool, jsonOut string) {
	m := experiment.Matrix{
		Scenarios: []string{"day", "plenary", "ladder"},
		Scales:    []float64{scale},
	}
	if grid {
		m.Scenarios = append(m.Scenarios, "grid", "grid9")
	}
	for s := int64(1); s <= int64(nSeeds); s++ {
		m.Seeds = append(m.Seeds, s)
	}
	specs, err := m.Expand()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ietfrepro:", err)
		profStop()
		os.Exit(1)
	}
	// SIGINT/SIGTERM stops dispatching further seeds; completed runs
	// still aggregate, so an interrupted robustness sweep reports the
	// seeds it finished.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	eng := &experiment.Engine{Workers: workers}
	results := eng.RunContext(ctx, specs)
	failed, canceled := 0, 0
	for _, res := range results {
		switch {
		case errors.Is(res.Err, context.Canceled):
			canceled++
		case res.Err != nil:
			failed++
			fmt.Fprintf(os.Stderr, "ietfrepro: %s seed=%d: %v\n", res.Spec.Name, res.Spec.Seed, res.Err)
		}
	}
	title := fmt.Sprintf("Repro matrix (%d runs)", len(results))
	if canceled > 0 {
		fmt.Fprintf(os.Stderr, "ietfrepro: interrupted: %d of %d runs canceled, aggregating the %d completed\n",
			canceled, len(results), len(results)-canceled)
		title = fmt.Sprintf("Repro matrix (%d of %d runs; interrupted)", len(results)-canceled, len(results))
	}
	aggs := experiment.Aggregate(results)
	experiment.AggregateTable(title, aggs).WriteTo(os.Stdout)
	if jsonOut != "" {
		doc := struct {
			Scenarios  []string                `json:"scenarios"`
			Seeds      []int64                 `json:"seeds"`
			Scales     []float64               `json:"scales"`
			Aggregates []experiment.Aggregated `json:"aggregates"`
		}{m.Scenarios, m.Seeds, m.Scales, aggs}
		if err := experiment.WriteJSONAtomic(jsonOut, doc); err != nil {
			fmt.Fprintln(os.Stderr, "ietfrepro:", err)
			profStop()
			os.Exit(1)
		}
	}
	if failed > 0 {
		profStop()
		os.Exit(1)
	}
	if canceled > 0 {
		profStop()
		os.Exit(130)
	}
}
