// Command ietfrepro regenerates every table and figure of "Understanding
// Congestion in IEEE 802.11b Wireless Networks" (Jardosh et al., IMC
// 2005) from synthetic IETF62-style traces.
//
// Tables 1–2 and Figures 4–5 come from the day and plenary session
// scenarios; the scatter Figures 6–15 come from the utilization sweep
// ladder, mirroring how the paper pools both sessions' per-second data.
//
// Usage:
//
//	ietfrepro                 # everything, default scale
//	ietfrepro -scale 0.5      # faster, smaller runs
//	ietfrepro -only 8         # just Figure 8
package main

import (
	"flag"
	"fmt"
	"os"

	"wlan80211/internal/analysis"
	"wlan80211/internal/capture"
	"wlan80211/internal/report"
	"wlan80211/internal/workload"
)

// analyze runs the streaming pipeline over a trace, optionally with
// per-channel parallelism (results are identical either way).
func analyze(recs []capture.Record, parallel bool) *analysis.Result {
	r, err := analysis.AnalyzeWith(analysis.Options{Parallel: parallel}, recs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ietfrepro:", err)
		os.Exit(1)
	}
	return r
}

func main() {
	var (
		scale    = flag.Float64("scale", 1.0, "scenario scale factor (0..1]")
		only     = flag.Int("only", 0, "print only this figure number (0 = everything)")
		parallel = flag.Bool("parallel", true, "shard analysis per channel across goroutines")
	)
	flag.Parse()

	day := workload.DaySession().Scale(*scale)
	plenary := workload.PlenarySession().Scale(*scale)

	// Table 1: the session plan itself.
	t1 := report.NewTable("Table 1: data sets", "set", "channels", "duration_s", "peak_users")
	t1.AddRow(day.Name, "1, 6, 11", day.DurationSec, day.PeakUsers)
	t1.AddRow(plenary.Name, "1, 6, 11", plenary.DurationSec, plenary.PeakUsers)

	if *only == 0 {
		t1.WriteTo(os.Stdout)
		fmt.Println()
		report.Table2().WriteTo(os.Stdout)
		fmt.Println()
	}

	// Session scenarios for Figures 4 and 5.
	for _, s := range []workload.Session{day, plenary} {
		b, err := s.Build()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ietfrepro:", err)
			os.Exit(1)
		}
		recs := b.Run()
		r := analyze(recs, *parallel)
		if *only == 0 || *only == 4 || *only == 5 {
			fmt.Printf("=== %s session (%d frames captured) ===\n\n", s.Name, len(recs))
			if *only == 0 || *only == 4 {
				report.Figure4a(r, 15).WriteTo(os.Stdout)
				fmt.Println()
				report.Figure4b(r).WriteTo(os.Stdout)
				fmt.Println()
				report.Figure4c(r, 15).WriteTo(os.Stdout)
				fmt.Println()
			}
			if *only == 0 || *only == 5 {
				report.Figure5(r).WriteTo(os.Stdout)
				fmt.Println()
				report.Figure5c(r).WriteTo(os.Stdout)
				fmt.Println()
			}
		}
	}

	if *only == 4 || *only == 5 {
		return
	}

	// Sweep ladder for Figures 6–15.
	recs := workload.MultiSweep(workload.DefaultLadder(*scale))
	r := analyze(recs, *parallel)
	fmt.Printf("=== utilization sweep (%d frames captured) ===\n\n", len(recs))
	figs := map[int]*report.Table{
		6:  report.Figure6(r),
		7:  report.Figure7(r),
		8:  report.Figure8(r),
		9:  report.Figure9(r),
		10: report.Figure10(r),
		11: report.Figure11(r),
		12: report.Figure12(r),
		13: report.Figure13(r),
		14: report.Figure14(r),
		15: report.Figure15(r),
	}
	if *only != 0 {
		t, ok := figs[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "ietfrepro: no figure %d\n", *only)
			os.Exit(2)
		}
		t.WriteTo(os.Stdout)
		return
	}
	report.Summary(r).WriteTo(os.Stdout)
	fmt.Println()
	for i := 6; i <= 15; i++ {
		figs[i].WriteTo(os.Stdout)
		fmt.Println()
	}
}
