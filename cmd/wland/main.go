// Command wland is the live congestion-monitoring daemon: it owns
// concurrent monitoring sessions — live scenario runs, paced pcap
// replays, or HTTP frame ingest — and serves their rolling-window
// congestion metrics and threshold alerts over an HTTP/JSON API.
//
// Usage:
//
//	wland [-addr 127.0.0.1:8211] [-max-sessions 8] [-window 300]
//
// The API surface (see internal/monitor):
//
//	GET    /healthz
//	GET    /api/v1/sessions
//	POST   /api/v1/sessions
//	GET    /api/v1/sessions/{id}
//	DELETE /api/v1/sessions/{id}
//	GET    /api/v1/sessions/{id}/metrics?window=SECONDS
//	GET    /api/v1/sessions/{id}/series?seconds=N
//	GET    /api/v1/sessions/{id}/alerts
//	POST   /api/v1/sessions/{id}/ingest
//
// The original unversioned /api/sessions... paths still work as
// deprecated aliases; they serve identical bodies plus a
// `Deprecation: true` header and a `Link: </api/v1/...>;
// rel="successor-version"` pointer.
//
// SIGINT/SIGTERM shut the daemon down gracefully: the listener stops
// accepting, every session's source is canceled, and each pipeline
// drains (reorder flush, final second close, last alert evaluation)
// before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wlan80211/internal/monitor"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8211", "listen address")
	maxSessions := flag.Int("max-sessions", monitor.DefaultMaxSessions,
		"maximum concurrent monitoring sessions (finished sessions count until deleted)")
	window := flag.Int("window", monitor.DefaultWindowSec,
		"default per-second history retained by each session")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := runDaemon(ctx, *addr, *maxSessions, *window, nil); err != nil {
		log.Fatalf("wland: %v", err)
	}
}

// drainTimeout bounds the graceful shutdown: in-flight HTTP requests
// and session drains must settle within it.
const drainTimeout = 30 * time.Second

// runDaemon runs the daemon until ctx is canceled, then drains. When
// ready is non-nil the bound address is sent on it once the listener
// is up (the E2E test binds port 0).
func runDaemon(ctx context.Context, addr string, maxSessions, window int, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mgr := monitor.NewManager(ctx, maxSessions)
	mgr.SetDefaultWindow(window)
	srv := &http.Server{Handler: monitor.NewServer(mgr)}

	log.Printf("wland: listening on %s (max %d sessions, %ds window)", ln.Addr(), maxSessions, window)
	if ready != nil {
		ready <- ln.Addr()
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}

	log.Printf("wland: shutting down, draining sessions")
	shctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	shutdownErr := srv.Shutdown(shctx)
	// The manager's sessions share ctx, so their sources are already
	// stopping; Close blocks until every pipeline drains.
	mgr.Close()
	log.Printf("wland: drained")
	return shutdownErr
}
