package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"wlan80211/internal/capture"
	"wlan80211/internal/dot11"
	"wlan80211/internal/monitor"
	"wlan80211/internal/phy"
)

// fixturePcap writes a radiotap pcap whose air is saturated for
// busySecs seconds and then beacon-only quiet for quietSecs — the
// shape that forces an alert to raise and then clear.
func fixturePcap(t *testing.T, busySecs, quietSecs int) string {
	t.Helper()
	ap := dot11.AddrFromUint64(0x01)
	sta := dot11.AddrFromUint64(0x02)
	wrap := func(tm phy.Micros, f dot11.Frame, r phy.Rate) capture.Record {
		return capture.Record{
			Time: tm, Rate: r, Channel: phy.Channel1,
			SignalDBm: -50, NoiseDBm: -95,
			OrigLen: f.WireLen(), Frame: f.AppendTo(nil),
		}
	}
	var recs []capture.Record
	var seq uint16
	for sec := 0; sec < busySecs; sec++ {
		tm := phy.Micros(sec) * phy.MicrosPerSecond
		limit := tm + phy.MicrosPerSecond - 20_000
		for tm < limit {
			d := dot11.NewData(ap, sta, ap, seq, make([]byte, 1400))
			d.FC.ToDS = true
			recs = append(recs, wrap(tm, d, phy.Rate11Mbps))
			end := tm + phy.Airtime(d.WireLen(), phy.Rate11Mbps)
			recs = append(recs, wrap(end+phy.SIFS, dot11.NewACK(sta), phy.Rate1Mbps))
			tm = end + phy.SIFS + phy.Airtime(14, phy.Rate1Mbps) + phy.DIFS
			seq++
		}
	}
	for sec := busySecs; sec < busySecs+quietSecs; sec++ {
		tm := phy.Micros(sec) * phy.MicrosPerSecond
		for i := 0; i < 5; i++ {
			b := dot11.NewBeacon(ap, "net", 1, uint64(tm), seq)
			recs = append(recs, wrap(tm+phy.Micros(i)*100_000, b, phy.Rate1Mbps))
			seq++
		}
	}
	// Trailing beacon so the final quiet second closes.
	last := dot11.NewBeacon(ap, "net", 1, 0, seq)
	recs = append(recs, wrap(phy.Micros(busySecs+quietSecs)*phy.MicrosPerSecond+1000, last, phy.Rate1Mbps))

	path := filepath.Join(t.TempDir(), "fixture.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := capture.NewWriter(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func apiDo(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestDaemonEndToEnd is the acceptance path: boot the daemon, run a
// pcap-replay session and a live scenario session concurrently, poll
// metrics until windows populate, observe the replay trip its alert
// (raise, then hysteresis clear in the quiet tail), and SIGTERM-drain
// the whole daemon cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	// The daemon's own signal path: SIGTERM cancels this context.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	ready := make(chan net.Addr, 1)
	daemonErr := make(chan error, 1)
	go func() {
		daemonErr <- runDaemon(ctx, "127.0.0.1:0", 4, monitor.DefaultWindowSec, ready)
	}()
	var base string
	select {
	case a := <-ready:
		base = "http://" + a.String()
	case err := <-daemonErr:
		t.Fatalf("daemon failed to start: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	var health struct {
		Status      string `json:"status"`
		MaxSessions int    `json:"max_sessions"`
	}
	if code := apiDo(t, "GET", base+"/healthz", nil, &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, health)
	}
	if health.MaxSessions != 4 {
		t.Fatalf("-max-sessions not honored: %+v", health)
	}

	// Session A: pcap replay with an alert rule that the busy phase
	// must raise and the quiet tail must clear.
	pcapPath := fixturePcap(t, 4, 4)
	var replay monitor.View
	code := apiDo(t, "POST", base+"/api/sessions", monitor.Config{
		Name:   "replay",
		Source: monitor.SourceConfig{Type: monitor.SourcePcap, Path: pcapPath},
		Alerts: []monitor.Rule{{
			Name: "congested", Metric: "utilization_pct", Op: ">=",
			Raise: 20, Clear: 5, WindowSec: 2,
		}},
	}, &replay)
	if code != http.StatusCreated {
		t.Fatalf("creating replay session: %d", code)
	}

	// Session B: a live scenario run from the experiment registry.
	var live monitor.View
	code = apiDo(t, "POST", base+"/api/sessions", monitor.Config{
		Name:   "live",
		Source: monitor.SourceConfig{Type: monitor.SourceScenario, Scenario: "day", Seed: 1, Scale: 0.02},
	}, &live)
	if code != http.StatusCreated {
		t.Fatalf("creating scenario session: %d", code)
	}

	// Poll both sessions until their windows populate.
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range []string{replay.ID, live.ID} {
		for {
			var m monitor.WindowMetrics
			if code := apiDo(t, "GET", fmt.Sprintf("%s/api/sessions/%s/metrics?window=60", base, id), nil, &m); code != http.StatusOK {
				t.Fatalf("metrics %s: %d", id, code)
			}
			if m.Seconds > 0 && m.Frames > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("session %s window never populated", id)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// The replay finishes quickly (speed 0); its alert history must
	// show the raise and the hysteresis clear.
	var alerts struct {
		Status  []monitor.AlertStatus `json:"status"`
		History []monitor.AlertEvent  `json:"history"`
	}
	for {
		if code := apiDo(t, "GET", base+"/api/sessions/"+replay.ID+"/alerts", nil, &alerts); code != http.StatusOK {
			t.Fatalf("alerts: %d", code)
		}
		raised, cleared := false, false
		for _, ev := range alerts.History {
			switch ev.State {
			case monitor.StateRaised:
				raised = true
			case monitor.StateCleared:
				cleared = raised
			}
		}
		if raised && cleared {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alert never completed raise+clear: %+v", alerts.History)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if alerts.Status[0].Active {
		t.Fatalf("alert still active after the quiet tail: %+v", alerts.Status)
	}

	// Both sessions are live concurrently (or the replay already
	// finished — both must be listed).
	var listing struct {
		Sessions []monitor.View `json:"sessions"`
	}
	if code := apiDo(t, "GET", base+"/api/sessions", nil, &listing); code != http.StatusOK || len(listing.Sessions) != 2 {
		t.Fatalf("listing: %d, %d sessions", code, len(listing.Sessions))
	}

	// SIGTERM: the daemon must drain both sessions and return nil.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-daemonErr:
		if err != nil {
			t.Fatalf("daemon exited with error after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain within 30s of SIGTERM")
	}
}
