module wlan80211

go 1.24
